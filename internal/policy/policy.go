// Package policy makes the pilot-job supply decision of §III-D a
// first-class, swappable concern. The paper evaluates exactly two
// supply models — fib (bags of fixed-length jobs) and var (flexible
// jobs sized by Slurm) — but the design space is much wider: rFaaS
// acquires compute through fixed-term renewable leases, and harvesting
// systems size their pool adaptively from observed demand. A
// SupplyPolicy decides what pilots to keep queued and reacts to pilot
// lifecycle events, all on the virtual clock and (when it needs
// randomness) on its own deterministic dist.NewRand stream, so every
// policy run stays a pure function of its seed.
//
// The package ships five registered policies:
//
//   - fib: the paper's bag-of-tasks model (Table I set A1, depth 10).
//   - var: the paper's flexible-job model (100 × 2 min–2 h).
//   - adaptive: feedback-controlled depth from invoker utilization and
//     the 503 rate.
//   - lease: fixed-term renewable pilots, rFaaS-style.
//   - hybrid: a configurable fib+var split.
//
// The core.PilotManager is the policy-agnostic engine: it owns the
// invoker lifecycle (warm-up, registration, hand-off) and calls the
// policy at every replenishment tick and pilot start/end.
package policy

import (
	"math/rand"
	"time"

	"repro/internal/des"
)

// Minutes builds a duration slice from minute values.
func Minutes(ms ...int) []time.Duration {
	out := make([]time.Duration, len(ms))
	for i, m := range ms {
		out[i] = time.Duration(m) * time.Minute
	}
	return out
}

// SetA1 is the job-length set the paper selected for the fib model
// (Table I, set A1).
var SetA1 = Minutes(2, 4, 6, 8, 14, 22, 34, 56, 90)

// EndReason classifies why a started pilot ended.
type EndReason uint8

// End reasons: EndPreempted when prime load reclaimed the node,
// EndExpired when the pilot ran out its granted time limit (a lease
// expiry, from the lease policy's perspective), EndOther for every
// remaining exit path.
const (
	EndPreempted EndReason = iota
	EndExpired
	EndOther
)

// String implements fmt.Stringer.
func (r EndReason) String() string {
	switch r {
	case EndPreempted:
		return "preempted"
	case EndExpired:
		return "expired"
	default:
		return "other"
	}
}

// PilotEnd describes one ended pilot to the policy.
type PilotEnd struct {
	Reason EndReason

	// Limit is the time limit Slurm granted the pilot.
	Limit time.Duration

	// Registered reports whether the pilot's invoker reached the
	// controller (false: it was killed during warm-up).
	Registered bool
}

// Env is the manager-provided view of the deployment a policy observes
// and acts through. Observation methods read the live Slurm queue and
// OpenWhisk controller; submission methods enqueue pilot jobs owned by
// the calling manager. All methods are safe at any decision point
// (replenishment ticks and pilot start/end events).
type Env interface {
	// Now is the current virtual time.
	Now() des.Time

	// QueuedPilots is the number of pending pilot jobs (fixed and
	// flexible).
	QueuedPilots() int

	// QueuedFixedByLimit counts the pending fixed-length pilots per
	// time limit. The map is a live read-only view of the scheduler's
	// maintained histogram (O(1), allocation-free): callers must not
	// mutate it, and submissions made through this Env update it
	// immediately — a replenish loop that submits until a count reaches
	// its target can read the view directly.
	QueuedFixedByLimit() map[time.Duration]int

	// QueuedFlexible is the number of pending flexible pilots.
	QueuedFlexible() int

	// RunningPilots is the number of started, not-yet-ended pilots.
	RunningPilots() int

	// HealthyInvokers is the number of registered healthy invokers.
	HealthyInvokers() int

	// InvokerUtilization is the busy share of healthy invoker capacity
	// (in-flight executions over total concurrency slots), in [0, 1];
	// 0 with no healthy invoker.
	InvokerUtilization() float64

	// Invocations returns the cumulative completed invocation count and
	// how many of those were rejected with 503 (no healthy invoker).
	Invocations() (completed, rejected503 int)

	// SubmitFixed enqueues one fixed-length pilot with the given Slurm
	// priority (the fib model uses priority ∝ length).
	SubmitFixed(limit time.Duration, priority int64)

	// SubmitFlexible enqueues one flexible pilot Slurm sizes between
	// min and max (--time-min/--time).
	SubmitFlexible(min, max time.Duration)

	// CancelQueued cancels up to n of this manager's pending pilots,
	// newest first, and returns how many were cancelled.
	CancelQueued(n int) int
}

// SupplyPolicy decides what pilot jobs to keep in the Slurm queue. One
// policy value belongs to one manager; implementations may keep state
// between calls. All calls happen on the virtual clock, sequentially.
type SupplyPolicy interface {
	// Name is the registry key; submitted pilot jobs are named
	// "hpcwhisk-<name>".
	Name() string

	// Init hands the policy its private deterministic random stream
	// before the first decision. Policies that draw no randomness may
	// ignore it.
	Init(rng *rand.Rand)

	// Replenish is the periodic queue top-up tick (every 15 s in the
	// paper) and also runs once at manager start.
	Replenish(env Env)

	// PilotStarted observes a pilot job starting on a node.
	PilotStarted(env Env)

	// PilotEnded observes a started pilot ending (preemption, time
	// limit, or any other exit). Queue-cancelled pilots that never
	// started are not reported.
	PilotEnded(env Env, end PilotEnd)
}
