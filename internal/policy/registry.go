package policy

import (
	"fmt"
	"sort"
)

// Factory builds a fresh, default-configured policy value. Policies
// are stateful, so every manager needs its own instance.
type Factory func() SupplyPolicy

var registry = map[string]Factory{}

// Register adds a policy factory under a name. Experiment configs and
// the CLI grids refer to policies by these names. Registering a
// duplicate or empty name panics (it is a programming error).
func Register(name string, f Factory) {
	if name == "" || f == nil {
		panic("policy: Register needs a name and a factory")
	}
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("policy: %q already registered", name))
	}
	registry[name] = f
}

// New builds a fresh default-configured policy by registry name.
func New(name string) (SupplyPolicy, error) {
	f, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("policy: unknown policy %q (have %v)", name, Names())
	}
	return f(), nil
}

// MustNew is New for callers whose name is already validated.
func MustNew(name string) SupplyPolicy {
	p, err := New(name)
	if err != nil {
		panic(err)
	}
	return p
}

// Names lists the registered policy names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

func init() {
	Register("fib", func() SupplyPolicy { return NewFib(DefaultFibConfig()) })
	Register("var", func() SupplyPolicy { return NewVar(DefaultVarConfig()) })
	Register("adaptive", func() SupplyPolicy { return NewAdaptive(DefaultAdaptiveConfig()) })
	Register("lease", func() SupplyPolicy { return NewLease(DefaultLeaseConfig()) })
	Register("hybrid", func() SupplyPolicy { return NewHybrid(DefaultHybridConfig()) })
}
