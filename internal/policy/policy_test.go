package policy

import (
	"testing"
	"time"

	"repro/internal/des"
	"repro/internal/dist"
)

// fakeEnv is a scripted policy.Env: submissions land in queues the
// observation methods read back, so a policy's control law can be
// exercised without a simulator.
type fakeEnv struct {
	now time.Duration

	fixed    map[time.Duration]int
	fixedSub []time.Duration // submission order
	flexible int
	running  int
	healthy  int
	util     float64
	done     int
	n503     int

	cancelled int
}

func newFakeEnv() *fakeEnv { return &fakeEnv{fixed: map[time.Duration]int{}} }

func (e *fakeEnv) Now() des.Time     { return e.now }
func (e *fakeEnv) QueuedPilots() int { return e.queuedFixed() + e.flexible }
func (e *fakeEnv) queuedFixed() int {
	n := 0
	for _, c := range e.fixed {
		n += c
	}
	return n
}
func (e *fakeEnv) QueuedFixedByLimit() map[time.Duration]int {
	// Live view, per the Env contract: SubmitFixed mutates e.fixed, so
	// the map a policy holds updates as it submits.
	return e.fixed
}
func (e *fakeEnv) QueuedFlexible() int         { return e.flexible }
func (e *fakeEnv) RunningPilots() int          { return e.running }
func (e *fakeEnv) HealthyInvokers() int        { return e.healthy }
func (e *fakeEnv) InvokerUtilization() float64 { return e.util }
func (e *fakeEnv) Invocations() (int, int)     { return e.done, e.n503 }
func (e *fakeEnv) SubmitFixed(l time.Duration, _ int64) {
	e.fixed[l]++
	e.fixedSub = append(e.fixedSub, l)
}
func (e *fakeEnv) SubmitFlexible(_, _ time.Duration) { e.flexible++ }
func (e *fakeEnv) CancelQueued(n int) int {
	// The fake only queues flexible jobs for the policies that cancel.
	if n > e.flexible {
		n = e.flexible
	}
	e.flexible -= n
	e.cancelled += n
	return n
}

func TestFibReplenishFillsEveryLength(t *testing.T) {
	p := NewFib(FibConfig{Lengths: Minutes(2, 4, 8), Depth: 3})
	env := newFakeEnv()
	p.Replenish(env)
	for _, l := range Minutes(2, 4, 8) {
		if env.fixed[l] != 3 {
			t.Errorf("length %v: queued %d, want 3", l, env.fixed[l])
		}
	}
	// Top-up only replaces what left the queue.
	env.fixed[2*time.Minute] = 1
	p.Replenish(env)
	if env.fixed[2*time.Minute] != 3 || env.queuedFixed() != 9 {
		t.Errorf("after top-up: %v", env.fixed)
	}
}

func TestVarReplenishTopsUpToDepth(t *testing.T) {
	p := NewVar(VarConfig{Depth: 10, Min: 2 * time.Minute, Max: time.Hour})
	env := newFakeEnv()
	p.Replenish(env)
	if env.flexible != 10 {
		t.Fatalf("queued %d flexible, want 10", env.flexible)
	}
	env.flexible = 7
	p.Replenish(env)
	if env.flexible != 10 {
		t.Fatalf("after top-up %d, want 10", env.flexible)
	}
}

func TestHybridSplitsDepths(t *testing.T) {
	p := NewHybrid(HybridConfig{
		Fib:      FibConfig{Lengths: Minutes(2, 4), Depth: 10},
		Var:      VarConfig{Depth: 100, Min: 2 * time.Minute, Max: time.Hour},
		FibShare: 0.3,
	})
	if p.FibDepth() != 3 || p.VarDepth() != 70 {
		t.Fatalf("depths = %d fib / %d var, want 3 / 70", p.FibDepth(), p.VarDepth())
	}
	env := newFakeEnv()
	p.Replenish(env)
	if env.fixed[2*time.Minute] != 3 || env.fixed[4*time.Minute] != 3 {
		t.Errorf("fixed queues %v, want 3 each", env.fixed)
	}
	if env.flexible != 70 {
		t.Errorf("flexible queue %d, want 70", env.flexible)
	}
	// The halves must not double-count each other.
	p.Replenish(env)
	if env.queuedFixed() != 6 || env.flexible != 70 {
		t.Errorf("second replenish changed queues: %v fixed, %d flexible", env.fixed, env.flexible)
	}
}

func TestLeaseReplenishCountsRunning(t *testing.T) {
	p := NewLease(LeaseConfig{Term: 30 * time.Minute, Target: 20, RenewProb: 1})
	p.Init(dist.NewRand(1))
	env := newFakeEnv()
	env.running = 12
	p.Replenish(env)
	if got := env.fixed[30*time.Minute]; got != 8 {
		t.Fatalf("queued %d leases, want 8 (target 20 - 12 running)", got)
	}
}

func TestLeaseRenewalDecision(t *testing.T) {
	expired := PilotEnd{Reason: EndExpired, Limit: 30 * time.Minute, Registered: true}

	always := NewLease(LeaseConfig{Term: 30 * time.Minute, Target: 5, RenewProb: 1})
	always.Init(dist.NewRand(1))
	env := newFakeEnv()
	always.PilotEnded(env, expired)
	if env.fixed[30*time.Minute] != 1 || always.Renewed != 1 {
		t.Errorf("RenewProb=1 expiry: %d submitted, %d renewed", env.fixed[30*time.Minute], always.Renewed)
	}

	never := NewLease(LeaseConfig{Term: 30 * time.Minute, Target: 5, RenewProb: 0})
	never.Init(dist.NewRand(1))
	env = newFakeEnv()
	never.PilotEnded(env, expired)
	if env.queuedFixed() != 0 || never.Lapsed != 1 {
		t.Errorf("RenewProb=0 expiry: %d submitted, %d lapsed", env.queuedFixed(), never.Lapsed)
	}

	// Preempted leases are never renewed: the node is gone.
	env = newFakeEnv()
	always.PilotEnded(env, PilotEnd{Reason: EndPreempted})
	if env.queuedFixed() != 0 {
		t.Error("preemption triggered a renewal")
	}
}

func TestAdaptiveGrowsUnderOverload(t *testing.T) {
	p := NewAdaptive(DefaultAdaptiveConfig())
	env := newFakeEnv()
	start := p.Depth()

	// A window full of 503 rejections must grow the queue.
	env.done, env.n503 = 100, 50
	p.Replenish(env)
	if p.Depth() <= start {
		t.Fatalf("depth %d after 50%% 503s, want > %d", p.Depth(), start)
	}
	if env.flexible != p.Depth() {
		t.Fatalf("queued %d, want topped up to depth %d", env.flexible, p.Depth())
	}

	// Saturated invokers grow it too, even 503-free.
	before := p.Depth()
	env.done, env.n503 = 200, 50 // no new 503s in this window
	env.healthy, env.util = 10, 0.9
	p.Replenish(env)
	if p.Depth() <= before {
		t.Errorf("depth %d under util 0.9, want > %d", p.Depth(), before)
	}
}

func TestAdaptiveShrinksUnderSustainedLowLoad(t *testing.T) {
	cfg := DefaultAdaptiveConfig()
	p := NewAdaptive(cfg)
	env := newFakeEnv()
	env.healthy, env.util = 5, 0.01
	start := p.Depth()
	for i := 0; i < 5; i++ {
		env.done += 100 // 503-free progress each window
		p.Replenish(env)
	}
	if p.Depth() >= start {
		t.Fatalf("depth %d after sustained 503-free low load, want < %d", p.Depth(), start)
	}
	if env.cancelled == 0 {
		t.Error("shrinking never cancelled queued pilots")
	}
	if env.flexible != p.Depth() {
		t.Errorf("queue %d out of step with depth %d", env.flexible, p.Depth())
	}

	// The floor holds under unbounded decay.
	for i := 0; i < 100; i++ {
		env.done += 100
		p.Replenish(env)
	}
	if p.Depth() != cfg.MinDepth {
		t.Errorf("depth %d, want clamped at MinDepth %d", p.Depth(), cfg.MinDepth)
	}
}

func TestAdaptiveCeilingHolds(t *testing.T) {
	cfg := DefaultAdaptiveConfig()
	p := NewAdaptive(cfg)
	env := newFakeEnv()
	for i := 0; i < 100; i++ {
		env.done += 100
		env.n503 += 100
		p.Replenish(env)
	}
	if p.Depth() != cfg.MaxDepth {
		t.Errorf("depth %d, want clamped at MaxDepth %d", p.Depth(), cfg.MaxDepth)
	}
}

func TestAdaptiveHoldsWithoutSignal(t *testing.T) {
	p := NewAdaptive(DefaultAdaptiveConfig())
	env := newFakeEnv() // no traffic, no healthy invokers
	start := p.Depth()
	for i := 0; i < 10; i++ {
		p.Replenish(env)
	}
	if p.Depth() != start {
		t.Errorf("depth drifted %d → %d with no load signal", start, p.Depth())
	}
}

func TestRegistryNamesAndConstruction(t *testing.T) {
	want := []string{"adaptive", "fib", "hybrid", "lease", "var"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names() = %v, want %v", got, want)
		}
	}
	for _, name := range want {
		p, err := New(name)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if p.Name() != name {
			t.Errorf("New(%q).Name() = %q", name, p.Name())
		}
		// Instances must be fresh per call (policies are stateful).
		if q := MustNew(name); q == p {
			t.Errorf("New(%q) returned a shared instance", name)
		}
	}
	if _, err := New("nope"); err == nil {
		t.Error("New(nope) succeeded")
	}
}
