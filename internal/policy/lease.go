package policy

import (
	"math/rand"
	"time"
)

// LeaseConfig parameterizes the rFaaS-style lease policy: the manager
// holds Target fixed-term "leases" (queued or running pilots of length
// Term) and decides at each expiry whether to renew.
type LeaseConfig struct {
	// Term is the fixed lease length (the pilot's time limit).
	Term time.Duration

	// Target is the number of leases to keep outstanding
	// (queued + running).
	Target int

	// RenewProb is the probability an expiring lease is renewed
	// immediately (continuity: the replacement enters the queue the
	// instant the old lease ends). A lapsed lease's slot is refilled
	// only at the next replenishment tick, as a fresh lease.
	RenewProb float64
}

// DefaultLeaseConfig returns a tractable default lease pool. The term
// must fit the cluster's typical declared idle window or Slurm never
// places the lease: on the paper's trace (2-minute median periods,
// heavy-tailed calm windows) 10 minutes harvests well; 30-minute
// leases barely start.
func DefaultLeaseConfig() LeaseConfig {
	return LeaseConfig{Term: 10 * time.Minute, Target: 60, RenewProb: 0.8}
}

// Lease requests fixed-term renewable pilots the way rFaaS acquires
// compute: explicit leases with a renewal decision at every expiry.
type Lease struct {
	cfg LeaseConfig
	rng *rand.Rand

	// Renewed and Lapsed count the renewal decisions.
	Renewed, Lapsed int
}

// NewLease builds the lease policy.
func NewLease(cfg LeaseConfig) *Lease {
	if cfg.Term <= 0 || cfg.Target <= 0 {
		panic("policy: lease needs a positive term and target")
	}
	if cfg.RenewProb < 0 || cfg.RenewProb > 1 {
		panic("policy: lease renewal probability must be in [0, 1]")
	}
	return &Lease{cfg: cfg}
}

// Name implements SupplyPolicy.
func (p *Lease) Name() string { return "lease" }

// Init implements SupplyPolicy: the renewal coin flips come from the
// policy's private stream.
func (p *Lease) Init(rng *rand.Rand) { p.rng = rng }

func (p *Lease) priority() int64 { return int64(p.cfg.Term / time.Minute) }

// Replenish tops the outstanding lease count (queued + running pilots)
// up to Target.
func (p *Lease) Replenish(env Env) {
	outstanding := env.QueuedPilots() + env.RunningPilots()
	for ; outstanding < p.cfg.Target; outstanding++ {
		env.SubmitFixed(p.cfg.Term, p.priority())
	}
}

// PilotStarted implements SupplyPolicy.
func (p *Lease) PilotStarted(Env) {}

// PilotEnded makes the renewal decision: a lease that ran out its term
// is renewed with probability RenewProb. Preempted leases are never
// renewed (the node is gone); their slots refill at the next tick.
func (p *Lease) PilotEnded(env Env, end PilotEnd) {
	if end.Reason != EndExpired {
		return
	}
	if p.rng.Float64() < p.cfg.RenewProb {
		p.Renewed++
		env.SubmitFixed(p.cfg.Term, p.priority())
	} else {
		p.Lapsed++
	}
}
