package policy

import (
	"math/rand"
	"time"
)

// VarConfig parameterizes the var supply model of §III-D: keep Depth
// queued flexible jobs whose length Slurm decides between Min
// (--time-min) and Max (--time).
type VarConfig struct {
	Depth    int
	Min, Max time.Duration
}

// DefaultVarConfig returns the paper's configuration (100 jobs of
// 2 min–2 h).
func DefaultVarConfig() VarConfig {
	return VarConfig{Depth: 100, Min: 2 * time.Minute, Max: 120 * time.Minute}
}

// Var is the paper's flexible-job supply model.
type Var struct {
	cfg VarConfig
}

// NewVar builds the var policy.
func NewVar(cfg VarConfig) *Var {
	if cfg.Depth <= 0 || cfg.Min <= 0 || cfg.Max < cfg.Min {
		panic("policy: var needs a positive depth and 0 < min ≤ max")
	}
	return &Var{cfg: cfg}
}

// Name implements SupplyPolicy.
func (p *Var) Name() string { return "var" }

// Init implements SupplyPolicy (var draws no randomness).
func (p *Var) Init(*rand.Rand) {}

// Replenish tops the queue up to Depth flexible jobs. Like the paper's
// manager it counts every pending pilot, not just flexible ones: under
// a pure var run the two are the same set.
func (p *Var) Replenish(env Env) {
	for queued := env.QueuedPilots(); queued < p.cfg.Depth; queued++ {
		env.SubmitFlexible(p.cfg.Min, p.cfg.Max)
	}
}

// PilotStarted implements SupplyPolicy.
func (p *Var) PilotStarted(Env) {}

// PilotEnded implements SupplyPolicy.
func (p *Var) PilotEnded(Env, PilotEnd) {}
