package cluster

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestNewAllIdle(t *testing.T) {
	c := New(5)
	if c.Len() != 5 {
		t.Fatalf("Len = %d, want 5", c.Len())
	}
	if c.Count(Idle) != 5 {
		t.Errorf("idle count = %d, want 5", c.Count(Idle))
	}
	for i := 0; i < 5; i++ {
		if c.State(i) != Idle {
			t.Errorf("node %d state = %v, want idle", i, c.State(i))
		}
	}
}

func TestSetTransitions(t *testing.T) {
	c := New(3)
	c.Set(1, Busy, time.Second)
	if c.State(1) != Busy {
		t.Errorf("state = %v, want busy", c.State(1))
	}
	if c.Count(Idle) != 2 || c.Count(Busy) != 1 {
		t.Errorf("counts idle=%d busy=%d", c.Count(Idle), c.Count(Busy))
	}
	c.Set(1, Pilot, 2*time.Second)
	if c.Count(Busy) != 0 || c.Count(Pilot) != 1 {
		t.Errorf("counts busy=%d pilot=%d", c.Count(Busy), c.Count(Pilot))
	}
}

func TestSetSameStateNoop(t *testing.T) {
	c := New(2)
	calls := 0
	c.OnChange(func(node int, from, to State, at time.Duration) { calls++ })
	c.Set(0, Idle, 0)
	if calls != 0 {
		t.Errorf("no-op transition fired observer")
	}
}

func TestOnChangeObserver(t *testing.T) {
	c := New(2)
	var gotNode int
	var gotFrom, gotTo State
	var gotAt time.Duration
	c.OnChange(func(node int, from, to State, at time.Duration) {
		gotNode, gotFrom, gotTo, gotAt = node, from, to, at
	})
	c.Set(1, Down, 7*time.Second)
	if gotNode != 1 || gotFrom != Idle || gotTo != Down || gotAt != 7*time.Second {
		t.Errorf("observer got (%d,%v,%v,%v)", gotNode, gotFrom, gotTo, gotAt)
	}
}

func TestNodesMembership(t *testing.T) {
	c := New(4)
	c.Set(0, Busy, 0)
	c.Set(2, Busy, 0)
	busy := c.Nodes(Busy)
	if len(busy) != 2 {
		t.Fatalf("busy nodes = %v", busy)
	}
	seen := map[int]bool{}
	for _, id := range busy {
		seen[id] = true
	}
	if !seen[0] || !seen[2] {
		t.Errorf("busy nodes = %v, want {0,2}", busy)
	}
}

func TestReserve(t *testing.T) {
	c := New(4)
	c.Reserve([]int{1, 3}, 0)
	if c.Count(Reserved) != 2 {
		t.Errorf("reserved = %d, want 2", c.Count(Reserved))
	}
	if c.SchedulableIdle() != 2 {
		t.Errorf("schedulable idle = %d, want 2", c.SchedulableIdle())
	}
}

func TestStateString(t *testing.T) {
	want := map[State]string{Idle: "idle", Busy: "busy", Pilot: "pilot", Reserved: "reserved", Down: "down"}
	for s, str := range want {
		if s.String() != str {
			t.Errorf("State(%d).String() = %q, want %q", s, s.String(), str)
		}
	}
	if State(200).String() == "" {
		t.Error("unknown state should still render")
	}
}

func TestNewZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(0) should panic")
		}
	}()
	New(0)
}

// Property: after any random transition sequence, per-state counts sum to
// Len and membership sets match the per-node states exactly.
func TestPropertyCountsConsistent(t *testing.T) {
	f := func(ops []uint16, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := New(17)
		states := []State{Idle, Busy, Pilot, Reserved, Down}
		var now time.Duration
		for _, op := range ops {
			node := int(op) % c.Len()
			s := states[rng.Intn(len(states))]
			now += time.Millisecond
			c.Set(node, s, now)
		}
		total := 0
		for _, s := range states {
			total += c.Count(s)
			for _, id := range c.Nodes(s) {
				if c.State(id) != s {
					return false
				}
			}
		}
		return total == c.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
