// Package cluster models the machine park of an HPC installation: a set
// of nodes with exclusive-use states, commercial reservations, and cheap
// per-state membership queries. It is the node-state store used by the
// Slurm emulator and by the monitoring perspectives of the experiments.
package cluster

import (
	"fmt"
	"time"
)

// State is the exclusive occupancy state of a node.
type State uint8

// Node states. A node is Idle when no job occupies it, Busy when a prime
// HPC job runs on it, Pilot when an HPC-Whisk pilot job runs on it,
// Reserved when a commercial reservation excludes it from scheduling
// (§I: reserved nodes are excluded from all analyses), and Down during
// failures or maintenance.
const (
	Idle State = iota
	Busy
	Pilot
	Reserved
	Down
	numStates
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case Idle:
		return "idle"
	case Busy:
		return "busy"
	case Pilot:
		return "pilot"
	case Reserved:
		return "reserved"
	case Down:
		return "down"
	default:
		return fmt.Sprintf("state(%d)", uint8(s))
	}
}

// ChangeFunc observes a node transition at a virtual instant.
type ChangeFunc func(node int, from, to State, at time.Duration)

// Cluster tracks the state of every node with O(1) transitions and O(1)
// per-state membership listing.
type Cluster struct {
	states   []State
	sets     [numStates]stateSet
	onChange ChangeFunc
}

// New returns a cluster of n nodes, all Idle.
func New(n int) *Cluster {
	if n <= 0 {
		panic("cluster: need at least one node")
	}
	c := &Cluster{states: make([]State, n)}
	for s := range c.sets {
		c.sets[s].init(n)
	}
	for i := 0; i < n; i++ {
		c.sets[Idle].add(i)
	}
	return c
}

// Len returns the number of nodes.
func (c *Cluster) Len() int { return len(c.states) }

// State returns the state of node i.
func (c *Cluster) State(i int) State { return c.states[i] }

// OnChange registers a single observer for node transitions.
func (c *Cluster) OnChange(fn ChangeFunc) { c.onChange = fn }

// Set transitions node i to state s at virtual instant at.
func (c *Cluster) Set(i int, s State, at time.Duration) {
	from := c.states[i]
	if from == s {
		return
	}
	c.sets[from].remove(i)
	c.sets[s].add(i)
	c.states[i] = s
	if c.onChange != nil {
		c.onChange(i, from, s, at)
	}
}

// Count returns the number of nodes in state s.
func (c *Cluster) Count(s State) int { return c.sets[s].len() }

// Nodes returns the ids of nodes in state s. The returned slice is owned
// by the cluster and is invalidated by the next Set; callers must not
// retain or mutate it.
func (c *Cluster) Nodes(s State) []int { return c.sets[s].ids }

// SchedulableIdle reports how many nodes are idle (candidate pilot hosts).
func (c *Cluster) SchedulableIdle() int { return c.Count(Idle) }

// Reserve marks the given nodes as commercially reserved; they never
// become schedulable again (matching the paper's exclusion of commercial
// nodes from all measurements).
func (c *Cluster) Reserve(nodes []int, at time.Duration) {
	for _, i := range nodes {
		c.Set(i, Reserved, at)
	}
}

// stateSet is an integer set with O(1) add/remove and slice iteration.
type stateSet struct {
	ids []int
	pos []int // pos[id] = index in ids, or -1
}

func (s *stateSet) init(n int) {
	s.pos = make([]int, n)
	for i := range s.pos {
		s.pos[i] = -1
	}
}

func (s *stateSet) len() int { return len(s.ids) }

func (s *stateSet) add(id int) {
	if s.pos[id] >= 0 {
		return
	}
	s.pos[id] = len(s.ids)
	s.ids = append(s.ids, id)
}

func (s *stateSet) remove(id int) {
	p := s.pos[id]
	if p < 0 {
		return
	}
	last := len(s.ids) - 1
	moved := s.ids[last]
	s.ids[p] = moved
	s.pos[moved] = p
	s.ids = s.ids[:last]
	s.pos[id] = -1
}
