package hpcwhisk

import (
	"os/exec"
	"testing"
)

// TestExamplesBuild compiles every example program. The examples are
// standalone main packages that nothing else imports, so without this
// gate a facade change can silently break them.
func TestExamplesBuild(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles packages via the go tool (skipped under -short)")
	}
	cmd := exec.Command("go", "build", "./examples/...")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build ./examples/... failed: %v\n%s", err, out)
	}
}
