// Command streaming is the worked "O(1)-memory streaming metrics"
// example. Week-scale horizons don't fit buffered metrics: a 7-day
// Fig 5b-style run buffers millions of per-request latencies. With
// DayConfig.Streaming (or the catalog's streaming option) every
// collector switches to bounded-memory sketches — latency quantiles in
// a mergeable t-digest, recent traffic in windowed counters, worker
// states in a streaming time-weighted accumulator — while the
// simulation itself stays byte-identical. Counters, shares and time
// means remain exact; quantiles come within the documented
// DigestEpsilon rank error.
//
// The example runs one streaming day and reads its digest, then sweeps
// the week-day scenario across replicas and reads the cross-replica
// *merged* digest the sweep engine builds (merging sketches instead of
// concatenating samples is what keeps multi-replica studies O(1) in
// memory too).
package main

import (
	"context"
	"fmt"
	"os"
	"time"

	hpcwhisk "repro"
)

func main() {
	// 1. One production day with streaming collectors. Identical
	// simulation, bounded metric memory: the retained footprint is a
	// few hundred KB regardless of horizon.
	horizon := 6 * time.Hour
	res1, err := hpcwhisk.RunScenario(context.Background(), "fib-day",
		hpcwhisk.WithSeed(1),
		hpcwhisk.WithNodes(64),
		hpcwhisk.WithHorizon(horizon),
		hpcwhisk.WithQPS(2),
		hpcwhisk.WithOption("actions", "20"),
		hpcwhisk.WithOption("streaming", "true"))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	day := res1.Unwrap().(hpcwhisk.DayResult)

	dig := day.Digests()["latency-s"]
	eps := hpcwhisk.DigestEpsilon(hpcwhisk.DefaultDigestCompression)
	fmt.Printf("one streaming day (%v, %d requests):\n", horizon, day.Load.Issued)
	fmt.Printf("  latency p50/p90/p99 = %.0f/%.0f/%.0f ms (each within ±%.0f%% rank error)\n",
		1000*dig.Quantile(0.50), 1000*dig.Quantile(0.90), 1000*dig.Quantile(0.99), 100*eps)
	fmt.Printf("  retained metric state: %.0f KB for %d latency observations\n",
		float64(day.MetricsBytes)/1024, dig.Len())

	// 2. Sweep the week-day scenario (horizon compressed here so the
	// example runs in seconds). Each replica returns its own digest;
	// the engine merges them in replica order into Result.Digests, so
	// the cross-replica tail comes from one sketch, not a sample dump.
	res, err := hpcwhisk.SweepScenarios(
		hpcwhisk.SweepConfig{Replicas: 3, BaseSeed: 7},
		[]hpcwhisk.ScenarioPoint{{
			Scenario: "week-day",
			Options: []hpcwhisk.ScenarioOption{
				hpcwhisk.WithNodes(64),
				hpcwhisk.WithHorizon(2 * time.Hour),
				hpcwhisk.WithQPS(2),
			},
		}})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	merged := res[0].Digests["latency-s"]
	fmt.Printf("\nweek-day sweep, 3 replicas merged into one sketch (%d observations):\n",
		merged.Len())
	for _, p := range []float64{0.50, 0.90, 0.99} {
		fmt.Printf("  cross-replica p%.0f = %.0f ms\n", 100*p, 1000*merged.Quantile(p))
	}
	s := res[0].Metrics["success-share"]
	fmt.Printf("  success share %.2f%% ± %.2f%% — scalar metrics aggregate exactly as before\n",
		100*s.Mean, 100*s.CI95)
}
