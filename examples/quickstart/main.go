// Quickstart: build a small HPC-Whisk deployment, drive it with a
// generated availability trace, deploy a function, and invoke it while
// pilots come and go.
package main

import (
	"fmt"
	"time"

	hpcwhisk "repro"
)

func main() {
	// A 64-node cluster running the fib supply model.
	sys := hpcwhisk.New(hpcwhisk.DefaultConfig(64, "fib"))

	// Two hours of calibrated idle-availability (≈6 idle nodes at a
	// time, 2-minute median windows).
	traceCfg := hpcwhisk.DefaultTraceConfig(64, 2*time.Hour, 42)
	traceCfg.MeanIdleNodes = 6
	sys.LoadTrace(traceCfg.Generate())

	// Deploy a function.
	sys.Ctrl.RegisterAction(&hpcwhisk.Action{
		Name:          "hello",
		MemoryMB:      256,
		Exec:          hpcwhisk.FixedExec(25 * time.Millisecond),
		Interruptible: true,
	})

	// Invoke it every two seconds while the infrastructure churns.
	var ok, errs int
	var latencies []time.Duration
	tick := sys.Sim.Every(2*time.Second, func() {
		sys.Ctrl.Invoke("hello", func(inv *hpcwhisk.Invocation) {
			if inv.Status == hpcwhisk.StatusSuccess {
				ok++
				latencies = append(latencies, inv.Latency())
			} else {
				errs++
			}
		})
	})

	sys.Start()
	sys.Run(2 * time.Hour)
	tick.Stop()
	sys.Run(2 * time.Minute) // drain

	var sum time.Duration
	for _, l := range latencies {
		sum += l
	}
	fmt.Printf("pilots started:      %d\n", sys.Manager.PilotsStarted)
	fmt.Printf("invokers registered: %d\n", sys.Manager.Registered)
	fmt.Printf("graceful hand-offs:  %d\n", sys.Manager.Handoffs)
	fmt.Printf("invocations:         %d ok, %d not served\n", ok, errs)
	if ok > 0 {
		fmt.Printf("mean latency:        %v\n", (sum / time.Duration(ok)).Round(time.Millisecond))
	}
	fmt.Printf("idle coverage:       %.1f%%\n", 100*sys.Logger.Stats().ShareUsed)
}
