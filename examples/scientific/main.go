// Scientific FaaS workload — the paper's named future work (§VII):
// run HPC-Whisk under a realistic, heterogeneous function population
// (Azure-Functions-calibrated durations, Zipf popularity, long
// non-interruptible functions) with the Alg. 1 commercial fallback.
// It runs through the scenario registry — the same path as
// `hpcwhisk-sim -scenario scientific`.
package main

import (
	"context"
	"fmt"
	"os"

	hpcwhisk "repro"
)

func main() {
	res, err := hpcwhisk.RunScenario(context.Background(), "scientific", hpcwhisk.WithSeed(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	hpcwhisk.RenderScenario(os.Stdout, res)
	fmt.Printf("fallback share: %.1f%%\n", 100*res.Metrics()["fallback-share"])
}
