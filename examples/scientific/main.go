// Scientific FaaS workload — the paper's named future work (§VII):
// run HPC-Whisk under a realistic, heterogeneous function population
// (Azure-Functions-calibrated durations, Zipf popularity, long
// non-interruptible functions) with the Alg. 1 commercial fallback.
package main

import (
	"os"

	hpcwhisk "repro"
)

func main() {
	res := hpcwhisk.RunScientific(hpcwhisk.DefaultScientificConfig(1))
	res.Render(os.Stdout)
}
