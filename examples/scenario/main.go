// Command scenario is the worked "scenario-first experiment API"
// example. It walks the four things the registry gives every
// experiment — enumeration, uniform configuration, cancellation, and
// sweeping — and then registers a custom scenario that immediately
// gains all four with zero extra plumbing.
//
// A scenario is one entry of the paper's evaluation catalog (or your
// own): a named Spec whose Run builds its experiment from the uniform
// Config (seed / nodes / horizon / policy / QPS plus documented
// key=value options) and returns the uniform Result contract
// (Metrics for sweeping, Table for rendering, Unwrap for the typed
// value). Registered scenarios appear automatically in
// hpcwhisk-sim -list, hpcwhisk-sweep -scenario, and
// hpcwhisk.Scenarios().
package main

import (
	"context"
	"errors"
	"fmt"
	"os"
	"time"

	hpcwhisk "repro"
)

func main() {
	// 1. Enumerate: the whole paper catalog is data, not entry points.
	fmt.Println("registered scenarios:")
	for _, sp := range hpcwhisk.Scenarios() {
		fmt.Printf("  %-18s %s\n", sp.Name, sp.Artifact)
	}

	// 2. Run by name with uniform options. Axes you leave unset keep
	// the scenario's paper calibration; -set-style raw options ride
	// through WithOption.
	res, err := hpcwhisk.RunScenario(context.Background(), "fig3",
		hpcwhisk.WithSeed(7))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("\nfig3 ready coverage: %.0f%% (paper: 83%%)\n",
		100*res.Metrics()["ready-coverage"])

	// 3. Cancellation: a context cut mid-run returns promptly (checked
	// every simulated minute) with a CancelError locating the cut in
	// virtual time. Here a progress callback cancels a 24-hour day
	// after two simulated hours.
	ctx, cancel := context.WithCancel(context.Background())
	_, err = hpcwhisk.RunScenario(ctx, "fib-day",
		hpcwhisk.WithSeed(1),
		hpcwhisk.WithNodes(64),
		hpcwhisk.WithQPS(0),
		hpcwhisk.WithProgress(func(done, total time.Duration) {
			if done >= 2*time.Hour {
				cancel()
			}
		}))
	var cut *hpcwhisk.ScenarioCancelError
	if errors.As(err, &cut) {
		fmt.Printf("canceled as planned: %v\n", cut)
	}

	// 4. Register your own: a Spec with a Run closure. This one
	// measures how much idle surface a half-size cluster slice still
	// offers — instantly runnable from both CLIs by name.
	hpcwhisk.RegisterScenario(hpcwhisk.Scenario{
		Name:        "half-cluster-idle",
		Artifact:    "beyond the paper",
		Description: "idle surface of a half-size Prometheus slice",
		Options: []hpcwhisk.ScenarioOptionDoc{
			{Name: "scale", Kind: "float", Default: "0.5", Help: "cluster-size scale factor"},
		},
		Run: func(ctx context.Context, cfg hpcwhisk.ScenarioConfig) (hpcwhisk.ScenarioResult, error) {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			scale := cfg.Float("scale", 0.5)
			nodes := int(scale * float64(cfg.Nodes(2239)))
			tr := hpcwhisk.GenerateTrace(nodes, cfg.Horizon(24*time.Hour), cfg.Seed())
			m := map[string]float64{
				"nodes":             float64(nodes),
				"idle-node-hours":   tr.TotalIdle().Hours(),
				"idle-periods":      float64(len(tr.Periods)),
				"mean-period-hours": tr.TotalIdle().Hours() / float64(len(tr.Periods)),
			}
			return hpcwhisk.NewScenarioResult(tr, m, nil), nil
		},
	})

	// The custom scenario sweeps like any catalog entry: replicas get
	// decorrelated seeds, metrics aggregate into mean/CI/quantiles.
	sweeps, err := hpcwhisk.SweepScenarios(
		hpcwhisk.SweepConfig{Replicas: 4, BaseSeed: 1},
		[]hpcwhisk.ScenarioPoint{
			{Scenario: "half-cluster-idle"},
			{Name: "quarter", Scenario: "half-cluster-idle",
				Options: []hpcwhisk.ScenarioOption{hpcwhisk.WithOption("scale", "0.25")}},
		})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	// The §I calibration pins the *mean idle node count*, so the idle
	// surface stays put while the slice shrinks — scarcity, not volume,
	// is what harvesting on a smaller cluster changes.
	fmt.Println("\ncustom-scenario sweep (4 replicas each):")
	for _, r := range sweeps {
		s := r.Metrics["idle-node-hours"]
		fmt.Printf("  %-18s %4.0f nodes: idle surface %.0f ± %.0f node-hours/day over %.0f periods\n",
			r.Name, r.Metrics["nodes"].Mean, s.Mean, s.CI95, r.Metrics["idle-periods"].Mean)
	}
}
