// Command policy is the worked "write your own supply policy" example:
// it implements an office-hours policy — harvest the cluster deeply at
// night, lightly during business hours when idle windows are scarce —
// registers it under a name, and compares it against the paper's fib
// model on the same simulated day.
//
// A supply policy implements hpcwhisk.SupplyPolicy: decide what pilot
// jobs to keep queued at each replenishment tick, and react to pilot
// start/end events. Everything runs on the virtual clock; randomness,
// if needed, must come from the stream handed to Init so runs stay
// deterministic per seed.
package main

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"time"

	hpcwhisk "repro"
)

// officeHours keeps a deep queue of flexible pilot jobs outside
// business hours and a shallow one inside them.
type officeHours struct {
	deep, shallow int
	openAt, shut  int // business hours [openAt, shut) on the virtual clock
}

// Name is the registry key; pilots appear in Slurm as
// "hpcwhisk-office-hours".
func (p *officeHours) Name() string { return "office-hours" }

// Init receives the policy's private random stream. This policy is
// deterministic, so it ignores it.
func (p *officeHours) Init(*rand.Rand) {}

// Replenish runs every 15 virtual seconds: pick the depth for the
// current virtual hour, then top the queue up (or trim it down).
func (p *officeHours) Replenish(env hpcwhisk.PolicyEnv) {
	depth := p.deep
	if hour := int(env.Now()/time.Hour) % 24; hour >= p.openAt && hour < p.shut {
		depth = p.shallow
	}
	queued := env.QueuedPilots()
	if queued > depth {
		queued -= env.CancelQueued(queued - depth)
	}
	for ; queued < depth; queued++ {
		env.SubmitFlexible(2*time.Minute, 2*time.Hour)
	}
}

// PilotStarted and PilotEnded observe the lifecycle; this policy needs
// neither.
func (p *officeHours) PilotStarted(hpcwhisk.PolicyEnv) {}

// PilotEnded implements hpcwhisk.SupplyPolicy.
func (p *officeHours) PilotEnded(hpcwhisk.PolicyEnv, hpcwhisk.PilotEnd) {}

func main() {
	hpcwhisk.RegisterPolicy("office-hours", func() hpcwhisk.SupplyPolicy {
		return &officeHours{deep: 80, shallow: 10, openAt: 8, shut: 18}
	})

	// The comparison runs through the scenario registry: a custom
	// policy slots into the standard policy-comparison scenario by
	// name, exactly like `hpcwhisk-sim -scenario policy-comparison
	// -set policies=fib,office-hours`.
	fmt.Println("comparing the custom office-hours policy against fib...")
	res, err := hpcwhisk.RunScenario(context.Background(), "policy-comparison",
		hpcwhisk.WithSeed(1),
		hpcwhisk.WithNodes(128),
		hpcwhisk.WithHorizon(6*time.Hour),
		hpcwhisk.WithOption("policies", "fib,office-hours"))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	hpcwhisk.RenderScenario(os.Stdout, res)
	fmt.Printf("\nregistered policies: %v\n", hpcwhisk.PolicyNames())
}
