// Figure 3: the paper's motivating example. Four HPC jobs are
// backfilled onto five nodes (minimal-makespan shape) and short pilot
// jobs of 2/4/6/10 minutes fill the idle gaps, covering most of the
// otherwise-wasted surface.
// It runs through the scenario registry — the same path as
// `hpcwhisk-sim -scenario fig3`.
package main

import (
	"context"
	"fmt"
	"os"

	hpcwhisk "repro"
)

func main() {
	res, err := hpcwhisk.RunScenario(context.Background(), "fig3", hpcwhisk.WithSeed(3))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	hpcwhisk.RenderScenario(os.Stdout, res)
}
