// Figure 3: the paper's motivating example. Four HPC jobs are
// backfilled onto five nodes (minimal-makespan shape) and short pilot
// jobs of 2/4/6/10 minutes fill the idle gaps, covering most of the
// otherwise-wasted surface.
package main

import (
	"os"

	hpcwhisk "repro"
)

func main() {
	res := hpcwhisk.RunFig3(3)
	res.Render(os.Stdout)
}
