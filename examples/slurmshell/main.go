// Slurm porcelain: drive the emulator exactly like the paper's
// shell-script job manager (§III-D) — sbatch preemptible pilots, watch
// squeue/sinfo, scancel the leftovers.
package main

import (
	"fmt"
	"time"

	"repro/internal/des"
	"repro/internal/slurm"
	"repro/internal/slurmcli"
	"repro/internal/workload"
)

func main() {
	sim := des.New()
	emu := slurm.New(sim, 8, slurm.DefaultConfig())
	emu.AddPartition(slurm.Partition{Name: "whisk", PriorityTier: 0})
	emu.AddPartition(slurm.Partition{Name: "hpc", PriorityTier: 1})

	cfg := workload.DefaultIdleProcess(8, time.Hour, 5)
	cfg.MeanIdleNodes = 3
	emu.DriveTrace(cfg.Generate())
	emu.Start()

	sh := slurmcli.New(emu)
	run := func(cmd string) {
		out, err := sh.Exec(cmd)
		fmt.Printf("$ %s\n", cmd)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		if out != "" {
			fmt.Println(out)
		}
	}

	// Submit a bag of fib pilots like the §III-D manager.
	for _, l := range []string{"2", "4", "6", "8", "14"} {
		run("sbatch --partition=whisk --job-name=pilot" + l + " --time=" + l + " --priority=" + l)
	}
	run("sbatch --partition=whisk --job-name=flex --time-min=2 --time=120")

	sim.RunUntil(2 * time.Minute)
	run("squeue")
	run("sinfo")

	sim.RunUntil(20 * time.Minute)
	run("squeue --state=running")
	run("scancel 5")
	fmt.Printf("(after 20 min: %d pilots started, %d preempted)\n", emu.Started, emu.Preempted)
}
