// Client wrapper (Alg. 1): when the HPC-Whisk deployment has no healthy
// invoker it returns 503; the wrapper off-loads calls to a commercial
// cloud for a 60-second window and then probes the cluster again, so
// callers never starve (§III-E).
//
// This example runs a deliberately starved deployment (tiny cluster,
// long saturations) and shows where the calls went.
package main

import (
	"fmt"
	"time"

	hpcwhisk "repro"
)

func main() {
	sys := hpcwhisk.New(hpcwhisk.DefaultConfig(16, "fib"))

	// A flapping availability trace: a few idle windows separated by
	// total saturation.
	traceCfg := hpcwhisk.DefaultTraceConfig(16, time.Hour, 7)
	traceCfg.MeanIdleNodes = 1.5
	traceCfg.SaturatedFraction = 0.5
	sys.LoadTrace(traceCfg.Generate())

	sys.Ctrl.RegisterAction(&hpcwhisk.Action{
		Name: "work", MemoryMB: 512,
		Exec:          hpcwhisk.FixedExec(40 * time.Millisecond),
		Interruptible: true,
	})

	fallback := hpcwhisk.NewLambdaClient(sys, 11)
	fallback.RegisterAction("work", hpcwhisk.FixedExec(40*time.Millisecond))
	wrapper := hpcwhisk.NewWrapper(sys, fallback)

	served, failed := 0, 0
	tick := sys.Sim.Every(time.Second, func() {
		wrapper.Invoke("work", func(inv *hpcwhisk.Invocation) {
			if inv.Status == hpcwhisk.StatusSuccess {
				served++
			} else {
				failed++
			}
		})
	})

	sys.Start()
	sys.Run(time.Hour)
	tick.Stop()
	sys.Run(2 * time.Minute)

	fmt.Printf("served:            %d (failed %d)\n", served, failed)
	fmt.Printf("primary calls:     %d\n", wrapper.PrimaryCalls)
	fmt.Printf("503 retries:       %d\n", wrapper.Retries)
	fmt.Printf("fallback calls:    %d (cold %d)\n", fallback.Calls, fallback.ColdCalls)
	fmt.Printf("healthy invokers registered over the run: %d\n", sys.Manager.Registered)
	fmt.Println("no caller ever observed a 503 — Alg. 1 absorbed them all")
}
