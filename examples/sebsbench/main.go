// SeBS benchmark (Fig. 7): run the real bfs/mst/pagerank kernels warm
// and compare the HPC-node platform against the AWS-Lambda 2048 MB
// platform — the paper observed the HPC node ≈15% faster.
package main

import (
	"os"

	hpcwhisk "repro"
)

func main() {
	res := hpcwhisk.RunFig7(30000, 8, 50, 4)
	res.Render(os.Stdout)
}
