// SeBS benchmark (Fig. 7): run the real bfs/mst/pagerank kernels warm
// and compare the HPC-node platform against the AWS-Lambda 2048 MB
// platform — the paper observed the HPC node ≈15% faster.
// The graph size and invocation count travel as generic scenario
// options, the same way `hpcwhisk-sim -scenario fig7 -set
// vertices=30000` passes them.
package main

import (
	"context"
	"fmt"
	"os"

	hpcwhisk "repro"
)

func main() {
	res, err := hpcwhisk.RunScenario(context.Background(), "fig7",
		hpcwhisk.WithSeed(4),
		hpcwhisk.WithOption("vertices", "30000"),
		hpcwhisk.WithOption("invocations", "50"))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	hpcwhisk.RenderScenario(os.Stdout, res)
}
