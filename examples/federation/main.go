// Federation: a cluster-of-clusters on one virtual clock. Four
// independent Slurm+whisk sites sit behind a routing front door; each
// request gets a hash-derived home site and the routing policy decides
// whether to keep it home or spill it to a healthier cluster.
//
// This example registers a custom routing policy — shortest-queue with
// home-site affinity — in the same registry the built-in policies
// ("capacity-weighted", "latency-weighted", "spill-over",
// "fast-lane-aware") live in, then runs it over a deliberately skewed
// federation: two comfortable sites and two starved ones.
package main

import (
	"fmt"
	"time"

	hpcwhisk "repro"
)

// shortestQueue keeps a request at its home site unless another
// healthy site's backlog is meaningfully shorter. It is a pure
// function of the health view — no private randomness — so runs are
// reproducible.
type shortestQueue struct{}

func (p *shortestQueue) Name() string { return "shortest-queue" }
func (p *shortestQueue) Init(n int)   {}

func (p *shortestQueue) Pick(v hpcwhisk.RouterView, action string, home int) int {
	best, bestDepth := hpcwhisk.NoSite, 0
	for i := 0; i < v.NumSites(); i++ {
		if !v.Healthy(i) {
			continue
		}
		d := v.QueueDepth(i)
		if best == hpcwhisk.NoSite || d < bestDepth || (d == bestDepth && i == home) {
			best, bestDepth = i, d
		}
	}
	// Home-site affinity: only spill when it buys a real backlog win,
	// so warm containers stay warm.
	if best != hpcwhisk.NoSite && v.Healthy(home) && v.QueueDepth(home) <= bestDepth+4 {
		return home
	}
	return best
}

func main() {
	hpcwhisk.RegisterRoutingPolicy("shortest-queue", func() hpcwhisk.RoutingPolicy {
		return &shortestQueue{}
	})

	// Four identical 64-node deployments from one base config; per-site
	// seeds are decorrelated automatically.
	base := hpcwhisk.DefaultConfig(64, "fib")
	base.Seed = 7
	cfg := hpcwhisk.UniformFederationConfig(4, base)
	cfg.Routing = "shortest-queue"
	fed := hpcwhisk.NewFederation(cfg)

	// A skewed idle surface: sites 0 and 1 have plenty of harvestable
	// nodes, sites 2 and 3 are starved and saturate half the time.
	for i := range fed.Sites {
		tr := hpcwhisk.DefaultTraceConfig(64, 2*time.Hour, int64(20+i))
		if i >= 2 {
			tr.MeanIdleNodes = 2
			tr.SaturatedFraction = 0.5
		}
		fed.LoadTrace(i, tr.Generate())
	}

	// One action catalog, registered on every site so a request can
	// land wherever the router sends it.
	for i := 0; i < 8; i++ {
		fed.RegisterAction(&hpcwhisk.Action{
			Name:          fmt.Sprintf("fn-%d", i),
			MemoryMB:      256,
			Exec:          hpcwhisk.FixedExec(30 * time.Millisecond),
			Interruptible: true,
		})
	}

	served, refused := 0, 0
	n := 0
	tick := fed.Sim.Every(250*time.Millisecond, func() {
		name := fmt.Sprintf("fn-%d", n%8)
		n++
		fed.Invoke(name, func(inv *hpcwhisk.Invocation) {
			if inv.Status == hpcwhisk.StatusSuccess {
				served++
			} else {
				refused++
			}
		})
	})

	fed.Start()
	fed.Run(2 * time.Hour)
	tick.Stop()
	fed.Run(2 * time.Minute)

	door := fed.Door
	fmt.Printf("routing policy:  %s (of %v)\n", door.Policy().Name(), hpcwhisk.RoutingPolicyNames())
	fmt.Printf("served %d / refused %d of %d issued\n", served, refused, door.Issued)
	fmt.Printf("cross-site spills: %d, no-site picks: %d\n", door.Spilled, door.NoSitePicks)
	for i, s := range fed.Sites {
		fmt.Printf("  site %d: issued=%-5d spills-in=%-4d healthy-registrations=%d\n",
			i, door.IssuedBySite[i], door.SpillsIn[i], s.Manager.Registered)
	}
}
