package hpcwhisk

// One benchmark per table and figure of the paper's evaluation. Each
// regenerates its experiment end to end and reports the headline
// numbers as custom metrics, so `go test -bench=. -benchmem` reproduces
// the whole evaluation section.

import (
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/bus"
	"repro/internal/des"
	"repro/internal/dist"
	"repro/internal/experiments"
	"repro/internal/router"
	"repro/internal/stats"
	"repro/internal/whisk"
	"repro/internal/workload"
)

// benchWeek caches the week trace across benchmarks; the sync.Once
// keeps the lazy fill safe under -race and parallel benchmark runs.
var (
	benchWeekOnce sync.Once
	benchWeek     *Trace
)

func weekTrace() *Trace {
	benchWeekOnce.Do(func() { benchWeek = WeekTrace(1) })
	return benchWeek
}

// BenchmarkFig1IdleNodesCDF regenerates Fig. 1a: the time-weighted
// distribution of the number of idle nodes over the week.
func BenchmarkFig1IdleNodesCDF(b *testing.B) {
	tr := weekTrace()
	b.ResetTimer()
	var r experiments.Fig1Result
	for i := 0; i < b.N; i++ {
		r = experiments.RunFig1(tr)
	}
	b.ReportMetric(r.MeanIdle, "mean-idle-nodes")
	b.ReportMetric(r.MedianIdle, "median-idle-nodes")
}

// BenchmarkFig1IdlePeriodCDF regenerates Fig. 1b: the idle-period
// length distribution.
func BenchmarkFig1IdlePeriodCDF(b *testing.B) {
	tr := weekTrace()
	b.ResetTimer()
	var med float64
	for i := 0; i < b.N; i++ {
		med = tr.PeriodLengths().Median()
	}
	b.ReportMetric(med/60, "median-period-min")
}

// BenchmarkFig1TimeSeries regenerates Fig. 1c: the idle-count series
// with its saturation and burst structure.
func BenchmarkFig1TimeSeries(b *testing.B) {
	tr := weekTrace()
	b.ResetTimer()
	var share float64
	var longest time.Duration
	for i := 0; i < b.N; i++ {
		share, longest = tr.SaturationShare()
	}
	b.ReportMetric(100*share, "zero-idle-%")
	b.ReportMetric(longest.Minutes(), "longest-zero-idle-min")
}

// BenchmarkFig2JobCDFs regenerates Fig. 2: declared limits, runtimes,
// and slack of the 74k-job week.
func BenchmarkFig2JobCDFs(b *testing.B) {
	b.ReportAllocs()
	var r experiments.Fig2Result
	for i := 0; i < b.N; i++ {
		r = experiments.RunFig2(2)
	}
	b.ReportMetric(r.MedianLimit.Minutes(), "median-limit-min")
}

// BenchmarkFig3ToySchedule regenerates the motivating example: 4 jobs
// on 5 nodes with pilot gap-filling.
func BenchmarkFig3ToySchedule(b *testing.B) {
	var r experiments.Fig3Result
	for i := 0; i < b.N; i++ {
		r = experiments.RunFig3(3)
	}
	b.ReportMetric(r.Makespan.Minutes(), "makespan-min")
	b.ReportMetric(100*r.ReadyCoverage, "ready-coverage-%")
	b.ReportMetric(r.AvgIdleNodes, "avg-idle-nodes")
}

// BenchmarkTableIJobLengthSets regenerates Table I: the clairvoyant
// coverage of all six job-length sets over the week.
func BenchmarkTableIJobLengthSets(b *testing.B) {
	tr := weekTrace()
	b.ResetTimer()
	var r experiments.TableIResult
	for i := 0; i < b.N; i++ {
		r = experiments.RunTableI(tr)
	}
	for _, row := range r.Rows {
		if row.Set.Name == "A1" {
			b.ReportMetric(100*row.ShareReady, "A1-ready-%")
			b.ReportMetric(float64(row.Jobs), "A1-jobs")
		}
	}
}

// BenchmarkTableIIFibExperiment regenerates Table II + Fig. 5a/5c: the
// full 24-hour fib-day run on the 2,239-node cluster.
func BenchmarkTableIIFibExperiment(b *testing.B) {
	var r DayResult
	for i := 0; i < b.N; i++ {
		cfg := FibDay(1)
		cfg.QPS = 0 // coverage perspective only; Fig 5b has its own bench
		r = experiments.RunDay(cfg)
	}
	b.ReportMetric(100*r.Coverage(), "live-coverage-%")
	b.ReportMetric(100*r.Sim.Coverage(), "sim-bound-%")
	b.ReportMetric(r.OW.HealthyAvg, "healthy-avg")
}

// BenchmarkTableIIIVarExperiment regenerates Table III + Fig. 6a/6c.
func BenchmarkTableIIIVarExperiment(b *testing.B) {
	var r DayResult
	for i := 0; i < b.N; i++ {
		cfg := VarDay(1)
		cfg.QPS = 0
		r = experiments.RunDay(cfg)
	}
	b.ReportMetric(100*r.Coverage(), "live-coverage-%")
	b.ReportMetric(100*r.Sim.Coverage(), "sim-bound-%")
	b.ReportMetric(r.OW.HealthyAvg, "healthy-avg")
}

// BenchmarkFig5bResponsivenessFib regenerates Fig. 5b: 10 QPS against
// 100 sleep functions for 24 hours on the fib day (864,000 requests).
func BenchmarkFig5bResponsivenessFib(b *testing.B) {
	var r DayResult
	for i := 0; i < b.N; i++ {
		r = experiments.RunDay(FibDay(1))
	}
	b.ReportMetric(100*r.Load.InvokedShare, "invoked-%")
	b.ReportMetric(100*r.Load.SuccessShare, "success-%")
	b.ReportMetric(float64(r.Load.MedianLatency.Milliseconds()), "median-ms")
}

// BenchmarkFig6bResponsivenessVar regenerates Fig. 6b on the var day.
func BenchmarkFig6bResponsivenessVar(b *testing.B) {
	var r DayResult
	for i := 0; i < b.N; i++ {
		r = experiments.RunDay(VarDay(1))
	}
	b.ReportMetric(100*r.Load.InvokedShare, "invoked-%")
	b.ReportMetric(100*r.Load.SuccessShare, "success-%")
	b.ReportMetric(float64(r.Load.MedianLatency.Milliseconds()), "median-ms")
}

// BenchmarkFig7SeBS regenerates Fig. 7: warm bfs/mst/pagerank on the
// HPC-node platform vs the Lambda 2048 MB platform, real kernels.
func BenchmarkFig7SeBS(b *testing.B) {
	var r experiments.Fig7Result
	for i := 0; i < b.N; i++ {
		r = experiments.RunFig7(20000, 8, 20, 4)
	}
	for _, row := range r.Rows {
		b.ReportMetric(row.Speedup, row.Function+"-lambda/prom")
	}
}

// BenchmarkWarmupCalibration verifies the §IV-B warm-up model (median
// 12.48 s, p95 26.50 s) at sampling speed.
func BenchmarkWarmupCalibration(b *testing.B) {
	d := dist.WarmupSeconds()
	r := dist.NewRand(1)
	var s stats.Sample
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Add(d.Sample(r))
	}
	if s.Len() > 100 {
		b.ReportMetric(s.Median(), "median-s")
		b.ReportMetric(s.Quantile(0.95), "p95-s")
	}
}

// BenchmarkAblationHandoff compares the hand-off design points of
// §III-C (full protocol / no interruption / hard kill).
func BenchmarkAblationHandoff(b *testing.B) {
	var r experiments.AblationResult
	for i := 0; i < b.N; i++ {
		r = experiments.RunAblation(256, 4*time.Hour, 5)
	}
	for _, row := range r.Rows {
		b.ReportMetric(100*row.LostShare, row.Variant.Name+"-lost-%")
	}
}

// BenchmarkCheckpointDay runs a contended day with the checkpoint
// subsystem fully engaged: 100 ms checkpoints under 500 ms bodies, so
// interrupted executions dump, requeue as resume tokens, and restore
// on successor pilots throughout the run. The allocation ratchet gates
// the segment-event path the same way BenchmarkFig5b gates the plain
// request path: checkpointed execution reuses the pooled invocation
// and cached callbacks, so per-segment allocations must stay flat.
func BenchmarkCheckpointDay(b *testing.B) {
	b.ReportAllocs()
	var r DayResult
	for i := 0; i < b.N; i++ {
		cfg := FibDay(5)
		cfg.Nodes = 64
		cfg.Horizon = 2 * time.Hour
		cfg.MeanIdleNodes = 6
		cfg.SaturatedFraction = 0.02
		cfg.QPS = 5
		cfg.NumActions = 50
		cfg.SleepExec = 500 * time.Millisecond
		cfg.CheckpointInterval = 100 * time.Millisecond
		r = experiments.RunDay(cfg)
	}
	b.ReportMetric(float64(r.Work.Checkpoints), "checkpoints")
	b.ReportMetric(float64(r.Work.Resumed), "resumes")
	b.ReportMetric(100*r.Work.GoodputShare(), "goodput-%")
}

// BenchmarkScientificWorkload runs the §VII future-work experiment: a
// heterogeneous, Azure-calibrated scientific FaaS workload over
// HPC-Whisk with the Alg. 1 fallback.
func BenchmarkScientificWorkload(b *testing.B) {
	var r experiments.ScientificResult
	for i := 0; i < b.N; i++ {
		r = experiments.RunScientific(DefaultScientificConfig(1))
	}
	b.ReportMetric(100*r.Load.SuccessShare, "success-%")
	b.ReportMetric(100*r.FallbackShare, "fallback-%")
}

// BenchmarkEndogenousScheduler runs prime jobs through the emulator's
// own EASY backfill with pilots harvesting the emergent gaps.
func BenchmarkEndogenousScheduler(b *testing.B) {
	var r experiments.EndogenousResult
	for i := 0; i < b.N; i++ {
		r = experiments.RunEndogenous(DefaultEndogenousConfig(1))
	}
	b.ReportMetric(100*r.PrimeUtilization, "prime-util-%")
	b.ReportMetric(100*r.PilotCoverage, "pilot-coverage-%")
}

// BenchmarkFederatedDay runs the cluster-of-clusters experiment: 4
// heterogeneous sites × 256 nodes behind the routing front door at
// 100 QPS. The horizon is compressed to 2 hours (720k requests) so
// the CI allocation ratchet stays fast; per request the door adds no
// allocations on top of the pooled whisk path Fig 5b/6b gate, so the
// ratchet catches any regression in either layer.
func BenchmarkFederatedDay(b *testing.B) {
	b.ReportAllocs()
	var r experiments.FederatedResult
	for i := 0; i < b.N; i++ {
		cfg := experiments.DefaultFederatedConfig(1)
		cfg.Horizon = 2 * time.Hour
		cfg.Routing = []string{"capacity-weighted"}
		r = experiments.RunFederated(cfg)
	}
	run := r.Runs[0]
	b.ReportMetric(100*run.Load.SuccessShare, "success-%")
	b.ReportMetric(100*run.SpillShare(), "spill-%")
	b.ReportMetric(float64(run.P95.Milliseconds()), "p95-ms")
	b.ReportMetric(run.GlobalHealthyAvg, "healthy-avg")
}

// BenchmarkFederatedDayParallel is the same federated day under the
// sharded pdes runtime: every site on its own event plane, advanced in
// parallel by GOMAXPROCS workers under the lookahead coordinator. The
// result is byte-identical to BenchmarkFederatedDay — the goldens and
// the sharded-equivalence tests pin that — so the headline metrics
// double as a cross-check, ns/op against the sequential benchmark is
// the wall-clock speedup, and the CI ratchet gates the parallel
// path's allocation budget.
func BenchmarkFederatedDayParallel(b *testing.B) {
	b.ReportAllocs()
	var r experiments.FederatedResult
	for i := 0; i < b.N; i++ {
		cfg := experiments.DefaultFederatedConfig(1)
		cfg.Horizon = 2 * time.Hour
		cfg.Routing = []string{"capacity-weighted"}
		cfg.Shards = runtime.GOMAXPROCS(0)
		r = experiments.RunFederated(cfg)
	}
	run := r.Runs[0]
	b.ReportMetric(100*run.Load.SuccessShare, "success-%")
	b.ReportMetric(100*run.SpillShare(), "spill-%")
	b.ReportMetric(float64(run.P95.Milliseconds()), "p95-ms")
	b.ReportMetric(run.GlobalHealthyAvg, "healthy-avg")
}

// BenchmarkRequestPath measures one invocation end to end through the
// pooled whisk request path: ingress → route → publish → pull →
// execute → result → egress on a single registered invoker, including
// the idle poll ticks of the surrounding five virtual seconds. This is
// the micro-benchmark behind the Fig. 5b/6b numbers; steady state must
// stay allocation-free (the CI gate ratchets allocs/op).
func BenchmarkRequestPath(b *testing.B) {
	b.ReportAllocs()
	sim := des.New()
	mb := bus.New(sim, nil, 1)
	cfg := whisk.DefaultControllerConfig()
	cfg.PoolInvocations = true
	ctrl := whisk.NewController(sim, mb, cfg, 2)
	ctrl.RegisterAction(&whisk.Action{
		Name:          "bench",
		MemoryMB:      256,
		Exec:          whisk.FixedExec(10 * time.Millisecond),
		Interruptible: true,
	})
	ctrl.Register(whisk.NewInvoker(whisk.DefaultInvokerConfig(), 3))
	for i := 0; i < 4; i++ { // warm the invocation, message, and des pools
		ctrl.Invoke("bench", nil)
		sim.RunFor(5 * time.Second)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctrl.Invoke("bench", nil)
		sim.RunFor(5 * time.Second)
	}
	b.StopTimer()
	if want := b.N + 4; ctrl.NSuccess+ctrl.NFailed != want {
		b.Fatalf("completed %d of %d invocations", ctrl.NSuccess+ctrl.NFailed, want)
	}
}

// BenchmarkWeekDayStreaming runs the week-day engine: a 7-day
// fib-calibrated horizon on a small cluster slice with the O(1)-memory
// streaming collectors (t-digest latencies, windowed series, streaming
// worker-state accounting). The B/op ratchet plus the metrics-bytes
// custom metric are the CI teeth of the memory claim: retained metric
// state must stay flat in the horizon (≈1.2M requests summarized in a
// few hundred KB), so any change that reintroduces horizon-linear
// buffering on the streaming path fails the gate.
func BenchmarkWeekDayStreaming(b *testing.B) {
	b.ReportAllocs()
	var r DayResult
	for i := 0; i < b.N; i++ {
		cfg := FibDay(1)
		cfg.Nodes = 64
		cfg.Horizon = 7 * 24 * time.Hour
		cfg.MeanIdleNodes = 4
		cfg.SaturatedFraction = 0.02
		cfg.QPS = 2
		cfg.NumActions = 20
		cfg.SleepExec = 50 * time.Millisecond
		cfg.Streaming = true
		r = experiments.RunDay(cfg)
	}
	b.ReportMetric(float64(r.MetricsBytes), "metrics-bytes")
	b.ReportMetric(100*r.Load.SuccessShare, "success-%")
	b.ReportMetric(float64(r.Load.MedianLatency.Milliseconds()), "median-ms")
}

// BenchmarkTraceGeneration measures the idle-process generator itself
// (the substrate every experiment builds on).
func BenchmarkTraceGeneration(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		workload.DefaultIdleProcess(2239, 24*time.Hour, int64(i)).Generate()
	}
}

// benchSite adapts a whisk.Controller to router.Site for the
// signal-path benchmark below (core.Site carries a full deployment;
// here only the controller's telemetry is under test).
type benchSite struct{ c *whisk.Controller }

func (s benchSite) Invoke(action string, done func(*whisk.Invocation)) { s.c.Invoke(action, done) }
func (s benchSite) HealthyInvokers() int                               { return s.c.HealthyCount() }
func (s benchSite) Utilization() float64                               { return s.c.Utilization() }
func (s benchSite) QueueDepth() int                                    { return s.c.QueueDepth() }
func (s benchSite) FastLaneDepth() int                                 { return s.c.FastLaneDepth() }
func (s benchSite) DrainingInvokers() int                              { return s.c.DrainingCount() }

var bigClusterActions = [8]string{"bc-0", "bc-1", "bc-2", "bc-3", "bc-4", "bc-5", "bc-6", "bc-7"}

// bigClusterRefreshEvery is the snapshot cadence of the measured loop:
// one front-door Refresh per 64 routing decisions, a busier grid than
// the 1 s default at 1000 QPS so the refresh term is well represented
// in the per-request cost.
const bigClusterRefreshEvery = 64

// bigClusterSink defeats dead-code elimination of the pick loops.
var bigClusterSink int

// routingFederation builds a 4-site federation with the given total
// invoker count registered and snapshot routing enabled — the
// control-plane state of a big federated run, without its traffic.
func routingFederation(invokers int) *router.FrontDoor {
	const nSites = 4
	sites := make([]router.Site, nSites)
	for s := range sites {
		sim := des.New()
		mb := bus.New(sim, nil, int64(s+1))
		ctrl := whisk.NewController(sim, mb, whisk.DefaultControllerConfig(), int64(s+100))
		for i := 0; i < invokers/nSites; i++ {
			ctrl.Register(whisk.NewInvoker(whisk.DefaultInvokerConfig(), int64(i+1)))
		}
		sites[s] = benchSite{ctrl}
	}
	fd := router.NewFrontDoor(sites, router.MustNew("capacity-weighted"))
	fd.EnableSnapshots()
	return fd
}

// measureRoutingNs times the steady-state control-plane cost of one
// routed request — the periodic snapshot Refresh amortized over the
// routing decisions between refreshes, plus the policy Pick itself —
// and returns ns per request (best of three rounds, so a CI
// scheduling hiccup in one round cannot skew the scaling ratio).
func measureRoutingNs(fd *router.FrontDoor) float64 {
	const picks = 1 << 18
	pol := fd.Policy()
	best := 0.0
	for round := 0; round < 3; round++ {
		start := time.Now()
		for i := 0; i < picks; i++ {
			if i%bigClusterRefreshEvery == 0 {
				fd.Refresh()
			}
			a := bigClusterActions[i&7]
			bigClusterSink += pol.Pick(fd, a, fd.Home(a))
		}
		if ns := float64(time.Since(start)) / picks; best == 0 || ns < best {
			best = ns
		}
	}
	return best
}

// BenchmarkBigClusterRouting pins the tentpole claim of the O(1)
// control-plane telemetry: the per-request routing cost of a
// federation is flat in cluster size. It measures the snapshot-refresh
// + pick loop over 4 sites at two scales — 1k and 16k total invokers —
// and fails if 16k costs more than 1.5× the 1k value (the pre-O(1)
// scans fail this by construction: their Refresh walked every invoker
// of every site). The reported ratio is gated against BENCH_ci.json,
// and the b.N loop keeps the 16k pick path under the allocation
// ratchet.
func BenchmarkBigClusterRouting(b *testing.B) {
	b.ReportAllocs()
	fd16k := routingFederation(16384)
	pol := fd16k.Policy()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%bigClusterRefreshEvery == 0 {
			fd16k.Refresh()
		}
		a := bigClusterActions[i&7]
		bigClusterSink += pol.Pick(fd16k, a, fd16k.Home(a))
	}
	b.StopTimer()
	ns16k := measureRoutingNs(fd16k)
	ns1k := measureRoutingNs(routingFederation(1024))
	ratio := ns16k / ns1k
	if ratio > 1.5 {
		b.Fatalf("per-request routing cost not flat: 16k invokers %.1f ns vs 1k invokers %.1f ns (ratio %.2f > 1.5)",
			ns16k, ns1k, ratio)
	}
	b.ReportMetric(ns1k, "ns-per-pick-1k")
	b.ReportMetric(ns16k, "ns-per-pick-16k")
	b.ReportMetric(ratio, "ratio-16k-vs-1k")
}
