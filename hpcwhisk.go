// Package hpcwhisk is the public facade of the HPC-Whisk reproduction:
// a FaaS layer harvesting the transient idle nodes of an HPC cluster by
// submitting low-priority, preemptible pilot jobs to Slurm, each hosting
// a dynamically (de)registering OpenWhisk invoker (Przybylski et al.,
// "Using Unused: Non-Invasive Dynamic FaaS Infrastructure with
// HPC-Whisk", SC22).
//
// The facade exposes three layers:
//
//   - Deployment: New wires a complete simulated deployment (Slurm
//     emulator + OpenWhisk controller + pilot-job manager) that can be
//     driven by a generated availability trace or a prime job stream.
//   - Workloads: GenerateTrace builds the calibrated idle-availability
//     trace standing in for the paper's production logs; GenerateJobs
//     builds the Fig. 2 HPC job stream.
//   - Experiments: every table and figure of the paper's evaluation is
//     a named scenario in a registry — enumerable via Scenarios, run via
//     RunScenario with functional options, cancellable through a
//     context, and sweepable by name. Typed experiment configs
//     (DayConfig, ScientificConfig, ...) remain exposed for embedders
//     that need every knob.
//
// Everything runs on a deterministic virtual clock: a seeded run is
// reproducible bit-for-bit, and 24-hour experiments complete in seconds.
package hpcwhisk

import (
	"context"
	"io"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/coverage"
	"repro/internal/experiments"
	"repro/internal/lambda"
	"repro/internal/loadgen"
	"repro/internal/policy"
	"repro/internal/router"
	"repro/internal/scenario"
	"repro/internal/sebs"
	"repro/internal/slurm"
	"repro/internal/stats"
	"repro/internal/sweep"
	"repro/internal/whisk"
	"repro/internal/workload"
)

// Supply-policy layer: the pilot-supply decision of §III-D is a
// swappable policy behind the policy.SupplyPolicy interface. Policies
// are stateful; build a fresh value per deployment.

// SupplyPolicy decides what pilot jobs the manager keeps queued.
type SupplyPolicy = policy.SupplyPolicy

// PolicyEnv is the deployment view a policy observes and acts through.
type PolicyEnv = policy.Env

// PilotEnd describes one ended pilot to a policy.
type PilotEnd = policy.PilotEnd

// Pilot end reasons as policies see them.
const (
	EndPreempted = policy.EndPreempted
	EndExpired   = policy.EndExpired
	EndOther     = policy.EndOther
)

// PolicyNames lists the registered supply policies ("adaptive", "fib",
// "hybrid", "lease", "var", plus anything the embedding program
// registered).
func PolicyNames() []string { return policy.Names() }

// NewPolicy builds a fresh default-configured policy by registry name.
func NewPolicy(name string) (SupplyPolicy, error) { return policy.New(name) }

// RegisterPolicy adds a custom policy factory to the registry, making
// it available to DayConfig.Policy, the sweep grid, and PolicyNames.
// See examples/policy for a worked custom policy.
func RegisterPolicy(name string, factory func() SupplyPolicy) {
	policy.Register(name, factory)
}

// Policy constructors with explicit knobs.

// FibPolicyConfig parameterizes the paper's bag-of-tasks model.
type FibPolicyConfig = policy.FibConfig

// NewFibPolicy builds the fib policy (§III-D).
func NewFibPolicy(cfg FibPolicyConfig) SupplyPolicy { return policy.NewFib(cfg) }

// VarPolicyConfig parameterizes the paper's flexible-job model.
type VarPolicyConfig = policy.VarConfig

// NewVarPolicy builds the var policy (§III-D).
func NewVarPolicy(cfg VarPolicyConfig) SupplyPolicy { return policy.NewVar(cfg) }

// AdaptivePolicyConfig parameterizes the feedback-controlled depth.
type AdaptivePolicyConfig = policy.AdaptiveConfig

// NewAdaptivePolicy builds the adaptive-depth harvesting policy.
func NewAdaptivePolicy(cfg AdaptivePolicyConfig) SupplyPolicy { return policy.NewAdaptive(cfg) }

// LeasePolicyConfig parameterizes the rFaaS-style lease pool.
type LeasePolicyConfig = policy.LeaseConfig

// NewLeasePolicy builds the fixed-term renewable-lease policy.
func NewLeasePolicy(cfg LeasePolicyConfig) SupplyPolicy { return policy.NewLease(cfg) }

// HybridPolicyConfig parameterizes the fib+var mix.
type HybridPolicyConfig = policy.HybridConfig

// NewHybridPolicy builds the configurable fib+var split policy.
func NewHybridPolicy(cfg HybridPolicyConfig) SupplyPolicy { return policy.NewHybrid(cfg) }

// System is a fully wired HPC-Whisk deployment: Slurm emulator,
// OpenWhisk controller and bus, pilot manager, and Slurm-level logger,
// all sharing one virtual clock.
type System = core.System

// SystemConfig configures a deployment.
type SystemConfig = core.SystemConfig

// DefaultConfig returns the paper's deployment configuration for a
// cluster size and supply policy (a policy-registry name, e.g. "fib"
// or "var"; unknown names panic — validate with NewPolicy first when
// the name comes from user input).
func DefaultConfig(nodes int, policyName string) SystemConfig {
	return core.DefaultSystemConfig(nodes, policyName)
}

// New builds a deployment.
func New(cfg SystemConfig) *System { return core.NewSystem(cfg) }

// Federation layer: N independent Slurm+whisk sites advance on one
// synchronized virtual timeline behind a routing front door, so a
// single simulation models a cluster-of-clusters. With
// FederationConfig.Shards > 1 the sites run on their own event planes
// across CPU cores under the internal/pdes lookahead coordinator,
// byte-identically to the sequential run. Routing policies live in
// their own registry, mirroring the supply-policy one.

// Site is one deployment inside a federation (a System owns exactly
// one plus its clock).
type Site = core.Site

// SiteConfig configures one federated site; it is the same type as
// SystemConfig.
type SiteConfig = core.SiteConfig

// Federation hosts N sites behind the routing front door.
type Federation = core.Federation

// FederationConfig wires the sites, names the routing policy, and
// optionally adds the Alg. 1 commercial-cloud fallback.
type FederationConfig = core.FederationConfig

// NewFederation builds a federation on a fresh virtual clock.
func NewFederation(cfg FederationConfig) *Federation { return core.NewFederation(cfg) }

// UniformFederationConfig derives an n-site federation of identical
// deployments from one base config, with per-site seeds decorrelated
// so growing the federation never perturbs existing sites.
func UniformFederationConfig(n int, base SiteConfig) FederationConfig {
	return core.UniformFederationConfig(n, base)
}

// FrontDoor is the federation's client entry point: per-action home
// sites plus a routing policy over the per-site health view (live on
// 1-site doors, snapshot-consistent in multi-site federations).
type FrontDoor = router.FrontDoor

// RoutingPolicy picks a target site per request from the health view.
type RoutingPolicy = router.RoutingPolicy

// RouterView is the per-site health view a routing policy observes.
type RouterView = router.View

// NoSite is the sentinel a routing policy returns when no site can
// take the request (the front door then surfaces a real 503, which
// the Alg. 1 wrapper can off-load).
const NoSite = router.NoSite

// RoutingPolicyNames lists the registered routing policies
// ("capacity-weighted", "fast-lane-aware", "latency-weighted",
// "spill-over", plus anything the embedding program registered).
func RoutingPolicyNames() []string { return router.Names() }

// NewRoutingPolicy builds a fresh routing policy by registry name.
func NewRoutingPolicy(name string) (RoutingPolicy, error) { return router.New(name) }

// RegisterRoutingPolicy adds a custom routing policy to the registry,
// making it available to FederationConfig.Routing and the
// federated-day scenario's routing option. See examples/federation for
// a worked custom policy.
func RegisterRoutingPolicy(name string, factory func() RoutingPolicy) {
	router.Register(name, factory)
}

// Trace is a whole-cluster idle-availability trace.
type Trace = workload.Trace

// TraceConfig parameterizes the calibrated idle-period process.
type TraceConfig = workload.IdleProcessConfig

// DefaultTraceConfig returns the §I calibration (9.23 mean idle nodes,
// 2-minute median periods, 10.11% saturation) for a cluster and span.
func DefaultTraceConfig(nodes int, horizon time.Duration, seed int64) TraceConfig {
	return workload.DefaultIdleProcess(nodes, horizon, seed)
}

// GenerateTrace builds a calibrated availability trace.
func GenerateTrace(nodes int, horizon time.Duration, seed int64) *Trace {
	return DefaultTraceConfig(nodes, horizon, seed).Generate()
}

// Job is one prime HPC job (Fig. 2 calibration).
type Job = workload.Job

// GenerateJobs builds the calibrated HPC job stream.
func GenerateJobs(n int, horizon time.Duration, seed int64) []Job {
	return workload.DefaultJobGen(n, horizon, seed).Generate()
}

// Action is a deployed FaaS function.
type Action = whisk.Action

// Invocation is one function call from submission to completion.
type Invocation = whisk.Invocation

// Invocation outcome statuses.
const (
	StatusSuccess = whisk.StatusSuccess
	StatusFailed  = whisk.StatusFailed
	StatusTimeout = whisk.StatusTimeout
	Status503     = whisk.Status503
)

// FixedExec models a constant in-container execution time.
func FixedExec(d time.Duration) whisk.ExecFunc { return whisk.FixedExec(d) }

// Wrapper is the Alg. 1 client-side fallback (§III-E).
type Wrapper = core.Wrapper

// NewWrapper builds the Alg. 1 wrapper over a primary deployment and an
// optional commercial-cloud fallback.
func NewWrapper(sys *System, fallback core.Backend) *Wrapper {
	return core.NewWrapper(sys.Sim, sys.Ctrl, fallback)
}

// LambdaClient is the commercial-FaaS fallback/baseline model.
type LambdaClient = lambda.Client

// NewLambdaClient builds the AWS-Lambda-like backend for a deployment's
// clock.
func NewLambdaClient(sys *System, seed int64) *LambdaClient {
	return lambda.NewClient(sys.Sim, lambda.DefaultClientConfig(), seed)
}

// LoadGenerator is the Gatling-like open-loop constant-rate client.
type LoadGenerator = loadgen.Generator

// NewLoadGenerator builds a load generator against the deployment's
// controller.
func NewLoadGenerator(sys *System, qps float64, actions []string, duration time.Duration) *LoadGenerator {
	return loadgen.New(sys.Sim, loadgen.ForController(sys.Ctrl),
		loadgen.Config{QPS: qps, Actions: actions, Duration: duration})
}

// SlurmJobSpec submits prime HPC jobs in full-scheduler mode.
type SlurmJobSpec = slurm.JobSpec

// CoverageSet is a named pilot job-length set (Table I).
type CoverageSet = coverage.Set

// SimulateCoverage runs the clairvoyant a-posteriori packing of §IV-B.
func SimulateCoverage(tr *Trace, set CoverageSet) coverage.Result {
	return coverage.Simulate(tr, set, coverage.DefaultConfig())
}

// SeBSWorkload bundles the real bfs/mst/pagerank kernels over a
// generated graph.
type SeBSWorkload = sebs.Workload

// NewSeBSWorkload generates the SeBS benchmark input.
func NewSeBSWorkload(vertices, degree int, seed int64) *SeBSWorkload {
	return sebs.NewWorkload(vertices, degree, seed)
}

// Scenario layer: the experiment catalog as first-class, enumerable,
// uniformly configured units. Every paper artifact — and every custom
// scenario the embedding program registers — is runnable by name with
// the same Config/Result contract, cancellable mid-run, and sweepable
// across seeds and option grids.

// Scenario describes one registered experiment scenario.
type Scenario = scenario.Spec

// ScenarioOption configures a scenario run.
type ScenarioOption = scenario.Option

// ScenarioOptionDoc documents one scenario-specific raw option.
type ScenarioOptionDoc = scenario.OptionDoc

// ScenarioConfig is the uniform configuration a scenario's Run reads.
type ScenarioConfig = scenario.Config

// ScenarioResult is the uniform result contract: flat metrics for
// sweeping, a table for rendering, and the typed value via Unwrap.
type ScenarioResult = scenario.Result

// ScenarioCancelError reports a scenario cut short by its context;
// errors.Is(err, context.Canceled) sees through it.
type ScenarioCancelError = scenario.CancelError

// Scenario options: the five uniform axes, the raw escape hatch, and
// the progress callback.
var (
	WithSeed     = scenario.WithSeed
	WithNodes    = scenario.WithNodes
	WithHorizon  = scenario.WithHorizon
	WithPolicy   = scenario.WithPolicy
	WithQPS      = scenario.WithQPS
	WithOption   = scenario.WithOption
	WithProgress = scenario.WithProgress
)

// Scenarios returns every registered scenario in name order: the full
// paper catalog (fib-day, var-day, fig1-fig3, fig7, table1, ablation,
// policy-comparison, scientific, endogenous) plus anything the
// embedding program registered.
func Scenarios() []Scenario { return scenario.All() }

// ScenarioNames lists the registered scenario names, sorted.
func ScenarioNames() []string { return scenario.Names() }

// RunScenario executes a registered scenario by name. Cancellation of
// ctx returns promptly (checked every simulated epoch) with a
// *ScenarioCancelError; the partial simulation is discarded.
func RunScenario(ctx context.Context, name string, opts ...ScenarioOption) (ScenarioResult, error) {
	return scenario.Run(ctx, name, opts...)
}

// RegisterScenario adds a custom scenario to the registry, making it
// runnable from both CLIs, the sweep grid, and RunScenario. See
// examples/scenario for a worked custom scenario.
func RegisterScenario(sp Scenario) { scenario.Register(sp) }

// NewScenarioResult bundles a typed value into the Result contract
// (for custom scenarios).
func NewScenarioResult(typed any, metrics map[string]float64, table [][]string) ScenarioResult {
	return scenario.NewResult(typed, metrics, table)
}

// RenderScenario prints a scenario result for humans: the typed
// value's paper-shaped rendering when it has one, the generic aligned
// table otherwise.
func RenderScenario(w io.Writer, res ScenarioResult) { scenario.Fprint(w, res) }

// Typed experiment configs: scenarios run through RunScenario /
// Scenarios (and SweepScenarios for grids); the config and result
// types below stay exported for embedders that drive
// internal/experiments entry points with every knob. The deprecated
// per-experiment Run* wrappers were removed — see CHANGES.md for the
// scenario name each one maps to.

// DayConfig configures a 24-hour production experiment.
type DayConfig = experiments.DayConfig

// DayResult bundles the Simulation / Slurm-level / OpenWhisk-level
// perspectives plus the responsiveness report.
type DayResult = experiments.DayResult

// FibDay returns the Table II / Fig. 5 configuration.
func FibDay(seed int64) DayConfig { return experiments.FibDay(seed) }

// VarDay returns the Table III / Fig. 6 configuration.
func VarDay(seed int64) DayConfig { return experiments.VarDay(seed) }

// AblationConfig parameterizes the hand-off ablation, including the
// supply policy the variants run under.
type AblationConfig = experiments.AblationConfig

// PolicyComparisonConfig configures the supply-policy comparison: the
// same calibrated day run once per policy, so rows differ only in how
// the pilot queue is stocked.
type PolicyComparisonConfig = experiments.PolicyComparisonConfig

// DefaultPolicyComparisonConfig returns a tractable comparison over
// every registered policy.
func DefaultPolicyComparisonConfig(seed int64) PolicyComparisonConfig {
	return experiments.DefaultPolicyComparisonConfig(seed)
}

// WeekTrace generates the calibrated stand-in for the paper's analyzed
// production week (2,239 nodes, 7 days).
func WeekTrace(seed int64) *Trace { return experiments.WeekTrace(seed) }

// ScientificConfig configures the §VII future-work experiment: a
// representative scientific FaaS workload over HPC-Whisk.
type ScientificConfig = experiments.ScientificConfig

// DefaultScientificConfig returns a tractable default scenario.
func DefaultScientificConfig(seed int64) ScientificConfig {
	return experiments.DefaultScientificConfig(seed)
}

// CheckpointModel parameterizes checkpoint/restore for one action:
// interval, dump cost, state size, and the restore path. Attach to an
// interruptible Action so interrupted executions resume from their
// last checkpoint instead of losing all progress.
type CheckpointModel = checkpoint.Model

// DefaultCheckpointModel returns the calibrated checkpoint model.
func DefaultCheckpointModel() *CheckpointModel { return checkpoint.Default() }

// CheckpointEvery returns the calibrated model with the interval
// pinned to d (d <= 0: disabled).
func CheckpointEvery(d time.Duration) *CheckpointModel { return checkpoint.WithInterval(d) }

// WorkCounters is the compute-accounting ledger of the checkpoint
// subsystem: goodput / wasted / lost body time plus dump and restore
// overheads.
type WorkCounters = stats.WorkCounters

// FrontierConfig configures the checkpoint frontier: a function
// duration × idle-window sweep where every cell runs with and without
// checkpointing (the checkpoint-frontier scenario).
type FrontierConfig = experiments.FrontierConfig

// FrontierResult is the frontier sweep's cell grid.
type FrontierResult = experiments.FrontierResult

// DefaultFrontierConfig returns the default frontier grid.
func DefaultFrontierConfig(seed int64) FrontierConfig {
	return experiments.DefaultFrontierConfig(seed)
}

// EndogenousConfig configures the full-scheduler experiment: prime jobs
// flow through the emulator's own EASY backfill and pilots harvest the
// idleness that emerges from scheduling.
type EndogenousConfig = experiments.EndogenousConfig

// DefaultEndogenousConfig returns a tractable slice.
func DefaultEndogenousConfig(seed int64) EndogenousConfig {
	return experiments.DefaultEndogenousConfig(seed)
}

// Replication and parameter sweeps: any experiment entry point can be
// fanned out across worker goroutines with decorrelated per-replica
// seeds and aggregated into mean/CI/quantile summaries. A sweep's
// output is bit-identical regardless of worker count.

// SweepConfig controls replica count, worker count and the base seed of
// a sweep.
type SweepConfig = sweep.Config

// SweepPoint is one parameter-grid cell: a label plus the experiment
// closure (a pure function of its seed).
type SweepPoint = sweep.Point

// SweepResult aggregates the replicas of one grid point.
type SweepResult = sweep.Result

// MetricSummary is the per-metric aggregate (mean, std, 95% CI
// half-width, quantiles) across a sweep's replicas.
type MetricSummary = stats.Summary

// Replicate runs one experiment across decorrelated replica seeds and
// aggregates its metrics; see DayResult.Metrics and friends for the
// flat metric views of the Run* results.
func Replicate(cfg SweepConfig, run func(seed int64) map[string]float64) SweepResult {
	return sweep.Replicate(cfg, run)
}

// Sweep runs every grid point with cfg.Replicas decorrelated replicas,
// fanning all (point, replica) pairs across the worker pool.
func Sweep(cfg SweepConfig, points []SweepPoint) []SweepResult {
	return sweep.Sweep(cfg, points)
}

// ScenarioPoint is one sweep-grid cell over the scenario registry.
type ScenarioPoint = sweep.ScenarioPoint

// SweepScenarios fans registered scenarios across seeds and option
// grids by name: any scenario — paper catalog or custom-registered —
// becomes a multi-replica study with no experiment-specific glue. All
// cells are validated before anything runs.
func SweepScenarios(cfg SweepConfig, cells []ScenarioPoint) ([]SweepResult, error) {
	return sweep.SweepScenarios(cfg, cells)
}

// Streaming O(1)-memory metrics: week-scale runs keep quantiles in
// mergeable t-digest sketches and recent traffic in windowed counters
// instead of unbounded buffers. Opt in per run (DayConfig.Streaming,
// FederatedConfig.Streaming, the catalog's "streaming" option); the
// simulation itself is byte-identical either way — only what the
// accounting retains changes.

// TDigest is a mergeable, deterministic quantile sketch with bounded
// memory (O(compression) centroids) and an Epsilon(compression) rank-
// error guarantee. Zero-allocation in steady state.
type TDigest = stats.TDigest

// MetricCollector is the streaming seam over scalar observation sinks:
// both the exact buffered stats.Sample and the O(1)-memory TDigest
// implement it.
type MetricCollector = stats.Collector

// DefaultDigestCompression is the compression the streaming runs use
// when none is given (rank error ≤ 3%).
const DefaultDigestCompression = stats.DefaultCompression

// NewTDigest builds a sketch; compression ≤ 0 selects
// DefaultDigestCompression.
func NewTDigest(compression float64) *TDigest {
	return stats.NewTDigest(compression)
}

// DigestEpsilon is the documented worst-case rank-error bound of a
// TDigest built with the given compression.
func DigestEpsilon(compression float64) float64 {
	return stats.Epsilon(compression)
}
